package ralin

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index), plus scaling and
// ablation benchmarks for the checker itself. The paper reports no wall-clock
// numbers; the quantities of interest are the verdicts (reproduced by the
// harness package and asserted in the test suite) and the relative cost of
// the constructive linearization strategies versus the exhaustive search.

import (
	"fmt"
	"testing"

	"ralin/internal/core"
	"ralin/internal/crdt"
	"ralin/internal/crdt/registry"
	"ralin/internal/harness"
	"ralin/internal/scenario"
	"ralin/internal/search"
	"ralin/internal/spec"
	"ralin/internal/verify"
)

// benchExperiment re-runs one figure reproduction per iteration (under the
// default checker options) and fails the benchmark if the reproduction stops
// matching the paper.
func benchExperiment(b *testing.B, run func(harness.Options) harness.Experiment) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if e := run(harness.Options{}); !e.OK {
			b.Fatalf("experiment %s no longer reproduces", e.ID)
		}
	}
}

// BenchmarkFig2RGAConflictResolution regenerates Figure 2 (E-FIG2).
func BenchmarkFig2RGAConflictResolution(b *testing.B) { benchExperiment(b, harness.Fig2) }

// BenchmarkFig3HistoryExtraction regenerates Figure 3 (E-FIG3).
func BenchmarkFig3HistoryExtraction(b *testing.B) { benchExperiment(b, harness.Fig3) }

// BenchmarkFig5aORSetNotLinearizable regenerates Figure 5a (E-FIG5A).
func BenchmarkFig5aORSetNotLinearizable(b *testing.B) { benchExperiment(b, harness.Fig5a) }

// BenchmarkFig5bORSetRALinearizable regenerates Figure 5b (E-FIG5B).
func BenchmarkFig5bORSetRALinearizable(b *testing.B) { benchExperiment(b, harness.Fig5b) }

// BenchmarkSec33ClientReasoning explores every schedule of the Section 3.3
// client program (E-SEC33).
func BenchmarkSec33ClientReasoning(b *testing.B) { benchExperiment(b, harness.Sec33) }

// BenchmarkFig8TimestampOrderLinearization regenerates Figure 8 (E-FIG8).
func BenchmarkFig8TimestampOrderLinearization(b *testing.B) { benchExperiment(b, harness.Fig8) }

// BenchmarkFig9CompositionExecutionOrder regenerates Figure 9 (E-FIG9).
func BenchmarkFig9CompositionExecutionOrder(b *testing.B) { benchExperiment(b, harness.Fig9) }

// BenchmarkFig10CompositionSharedTimestamp regenerates Figure 10 (E-FIG10).
func BenchmarkFig10CompositionSharedTimestamp(b *testing.B) { benchExperiment(b, harness.Fig10) }

// BenchmarkFig13SemanticsSteps regenerates Figure 13 (E-FIG13).
func BenchmarkFig13SemanticsSteps(b *testing.B) { benchExperiment(b, harness.Fig13) }

// BenchmarkFig14AddAtSpecSeparation regenerates Figure 14 (E-FIG14).
func BenchmarkFig14AddAtSpecSeparation(b *testing.B) { benchExperiment(b, harness.Fig14) }

// fig12BenchOptions keeps one Figure 12 row affordable inside a benchmark
// iteration while still running every obligation.
func fig12BenchOptions() harness.Fig12Options {
	return harness.Fig12Options{
		Verify: verify.Options{
			Seed: 1, Trials: 5, Ops: 8, Replicas: 3,
			Elems: []string{"a", "b", "c"}, MaxStates: 25,
		},
		HistoryTrials: 8,
		Workload: harness.WorkloadConfig{
			Seed: 1, Ops: 8, Replicas: 3,
			Elems: []string{"a", "b", "c"}, DeliveryProb: 40,
		},
	}
}

// BenchmarkFig12Table regenerates the whole Figure 12 table per iteration
// (E-FIG12).
func BenchmarkFig12Table(b *testing.B) {
	b.ReportAllocs()
	opts := fig12BenchOptions()
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig12Table(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.OK() {
				b.Fatalf("row %s failed verification", r.Name)
			}
		}
	}
}

// BenchmarkFig12 regenerates each row of Figure 12 separately: proof
// obligations plus random-history checking for one CRDT per sub-benchmark.
func BenchmarkFig12(b *testing.B) {
	opts := fig12BenchOptions()
	for _, d := range registry.Fig12() {
		d := d
		b.Run(d.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				row, err := harness.Fig12RowFor(d, opts)
				if err != nil {
					b.Fatal(err)
				}
				if !row.OK() {
					b.Fatalf("%s failed verification", d.Name)
				}
			}
		})
	}
}

// BenchmarkCheckerScalingOps measures RA-linearizability checking of random
// RGA histories as the number of operations grows (E-SCALE).
func BenchmarkCheckerScalingOps(b *testing.B) {
	d, err := registry.Lookup("RGA")
	if err != nil {
		b.Fatal(err)
	}
	for _, ops := range []int{4, 6, 8, 10, 12} {
		ops := ops
		b.Run(fmt.Sprintf("ops=%d", ops), func(b *testing.B) {
			benchCheckHistories(b, d, harness.WorkloadConfig{
				Seed: 3, Ops: ops, Replicas: 3, DeliveryProb: 40,
			})
		})
	}
}

// BenchmarkCheckerScalingReplicas measures RA-linearizability checking of
// random OR-Set histories as the number of replicas grows (E-SCALE).
func BenchmarkCheckerScalingReplicas(b *testing.B) {
	d, err := registry.Lookup("OR-Set")
	if err != nil {
		b.Fatal(err)
	}
	for _, replicas := range []int{2, 3, 4, 6} {
		replicas := replicas
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			benchCheckHistories(b, d, harness.WorkloadConfig{
				Seed: 3, Ops: 8, Replicas: replicas,
				Elems: []string{"a", "b", "c"}, DeliveryProb: 40,
			})
		})
	}
}

func benchCheckHistories(b *testing.B, d crdt.Descriptor, cfg harness.WorkloadConfig) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		h, err := harness.RunRandom(d, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res := core.CheckRA(h, d.Spec, d.CheckOptions()); !res.OK {
			b.Fatalf("random history not RA-linearizable: %v", res.LastErr)
		}
	}
}

// BenchmarkConstructiveVsExhaustive is the ablation called out in DESIGN.md:
// the constructive timestamp-order linearization of Theorem 4.6 versus a
// purely exhaustive search over linear extensions, on identical RGA
// histories.
func BenchmarkConstructiveVsExhaustive(b *testing.B) {
	d, err := registry.Lookup("RGA")
	if err != nil {
		b.Fatal(err)
	}
	cfg := harness.WorkloadConfig{Seed: 11, Ops: 9, Replicas: 3, DeliveryProb: 40}
	histories := make([]*core.History, 12)
	for i := range histories {
		cfg.Seed = int64(100 + i)
		h, err := harness.RunRandom(d, cfg)
		if err != nil {
			b.Fatal(err)
		}
		histories[i] = h
	}
	variants := []struct {
		name string
		opts core.CheckOptions
	}{
		{"constructive", core.CheckOptions{Strategies: []core.Strategy{core.StrategyTimestampOrder}}},
		{"exhaustive-legacy", core.CheckOptions{Exhaustive: true, MaxExtensions: 500000, Engine: core.EngineLegacy}},
		{"exhaustive-pruned", core.CheckOptions{Exhaustive: true, MaxExtensions: 500000, Engine: core.EnginePruned}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h := histories[i%len(histories)]
				if res := core.CheckRA(h, d.Spec, v.opts); !res.OK {
					b.Fatalf("history not RA-linearizable under %s: %v", v.name, res.LastErr)
				}
			}
		})
	}
}

// BenchmarkBatchCheckRandomHistories measures the CheckRandomHistories batch
// pipeline end to end — workload generation, exhaustive checking (strategies
// disabled so every trial drives the search engine) and deterministic
// aggregation — at the four corners of {per-history fresh engine state,
// shared batch session} × {1, 4} batch workers. fresh/w1 is the pre-batch
// pipeline (every history rebuilt the interner, the 64-shard memo table and
// the searcher scratch from scratch); shared/w4 is the default pipeline after
// the batch-session change. Inner search parallelism is pinned to 1 so the
// variants differ only in batch structure. See BENCHMARKS.md for committed
// numbers; `make bench-gate` diffs the allocs/op of every variant against the
// committed baseline.
func BenchmarkBatchCheckRandomHistories(b *testing.B) {
	d, err := registry.Lookup("OR-Set")
	if err != nil {
		b.Fatal(err)
	}
	check := d.CheckOptions()
	check.Strategies = nil
	check.Parallelism = 1
	cfg := harness.WorkloadConfig{
		Seed: 5, Ops: 8, Replicas: 3,
		Elems: []string{"a", "b", "c"}, DeliveryProb: 40,
	}
	const trials = 32
	variants := []struct {
		name  string
		batch harness.Options
	}{
		{"fresh/w1", harness.Options{BatchWorkers: 1, FreshSessions: true, Check: &check}},
		{"fresh/w4", harness.Options{BatchWorkers: 4, FreshSessions: true, Check: &check}},
		{"shared/w1", harness.Options{BatchWorkers: 1, Check: &check}},
		{"shared/w4", harness.Options{BatchWorkers: 4, Check: &check}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := harness.CheckRandomHistoriesWith(d, trials, cfg, v.batch)
				if err != nil {
					b.Fatal(err)
				}
				if !out.OK() {
					b.Fatalf("random OR-Set histories must be RA-linearizable: %+v", out)
				}
			}
			b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "histories/sec")
		})
	}
}

// BenchmarkBatchRefutations measures a batch of full refutations (the
// engine-dominated workload: pre-built non-RA-linearizable counter histories,
// no generation cost) through CheckHistoryBatch, per-history fresh state
// versus one shared session. Every trial must refute its whole search space,
// so this isolates what the shared session and the StepAppend fast path save
// inside the checking pipeline itself.
func BenchmarkBatchRefutations(b *testing.B) {
	var hs []*core.History
	for i := 0; i < 12; i++ {
		hs = append(hs, nonLinearizableHistory(4))
	}
	opts := core.CheckOptions{Exhaustive: true, Parallelism: 1}
	variants := []struct {
		name  string
		batch harness.Options
	}{
		{"fresh/w1", harness.Options{BatchWorkers: 1, FreshSessions: true}},
		{"shared/w1", harness.Options{BatchWorkers: 1}},
		{"shared/w4", harness.Options{BatchWorkers: 4}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := harness.CheckHistoryBatch("refutations", spec.Counter{}, opts, hs, v.batch)
				if err != nil {
					b.Fatal(err)
				}
				if out.Linearizable != 0 {
					b.Fatalf("every history must be refuted: %+v", out)
				}
			}
			b.ReportMetric(float64(len(hs))*float64(b.N)/b.Elapsed().Seconds(), "histories/sec")
		})
	}
}

// BenchmarkSessionRecheck isolates the per-check setup cost the session
// history-plan cache amortizes: one OR-Set history (real query-update
// rewriting, so every check pays a full history clone without the cache)
// re-checked exhaustively, fresh engine state per check versus one session
// whose rewrite cache serves the γ-rewriting and whose plan pool serves the
// prepare() index arrays after the first check. Sequential search, so the
// variants differ only in setup amortization. See BENCHMARKS.md for committed
// numbers; `make bench-gate` diffs both variants against the baseline.
func BenchmarkSessionRecheck(b *testing.B) {
	d, err := registry.Lookup("OR-Set")
	if err != nil {
		b.Fatal(err)
	}
	cfg := harness.WorkloadConfig{
		Seed: 7, Ops: 8, Replicas: 3,
		Elems: []string{"a", "b", "c"}, DeliveryProb: 40,
	}
	h, err := harness.RunRandom(d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	opts := d.CheckOptions()
	opts.Strategies = nil
	opts.Parallelism = 1
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if res := core.CheckRA(h, d.Spec, opts); !res.OK {
				b.Fatalf("history must be RA-linearizable: %v", res.LastErr)
			}
		}
	})
	b.Run("session", func(b *testing.B) {
		sess := search.NewSession()
		// Two warm-up checks fill the session's caches: the first fills the
		// pools (plan, searcher, shared block, memo arena) and marks the
		// history seen, the second — now a recognized re-check — fills the
		// transition cache. The timed loop then measures the warm re-check
		// steady state: 0 allocs/op, asserted by `make bench-gate`.
		for w := 0; w < 2; w++ {
			if res := core.CheckRAWith(h, d.Spec, opts, sess); !res.OK {
				b.Fatalf("history must be RA-linearizable: %v", res.LastErr)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := core.CheckRAWith(h, d.Spec, opts, sess); !res.OK {
				b.Fatalf("history must be RA-linearizable: %v", res.LastErr)
			}
		}
	})
}

// nonLinearizableHistory builds the adversarial history of the engine
// comparison: k concurrent counter increments all visible to one read that
// returns an impossible value. The legacy enumerator validates all k!
// extensions before rejecting; the pruned engine's shared memo table
// collapses the commuting prefixes to the 2^k distinct frontier sets — for
// every worker at once.
func nonLinearizableHistory(k int) *core.History {
	h := core.NewHistory()
	for i := 1; i <= k; i++ {
		h.MustAdd(&core.Label{ID: uint64(i), Method: "inc", Kind: core.KindUpdate, GenSeq: uint64(i)})
	}
	r := h.MustAdd(&core.Label{ID: uint64(k + 1), Method: "read", Ret: int64(999), Kind: core.KindQuery, GenSeq: uint64(k + 1)})
	for i := 1; i <= k; i++ {
		h.MustAddVis(uint64(i), r.ID)
	}
	return h
}

// BenchmarkEngineNonLinearizable compares the pruned engine against the
// legacy enumerator on a non-RA-linearizable history, where the whole search
// space must be refuted. Candidate checks per refutation are reported as the
// "checks/refute" metric (Result.Tried for legacy, Result.Nodes for pruned);
// the memo table is shared and claimed on node entry, so the parallel
// variants' node counts track the sequential one instead of growing with the
// worker count. See BENCHMARKS.md for committed numbers.
func BenchmarkEngineNonLinearizable(b *testing.B) {
	h := nonLinearizableHistory(7)
	sp := spec.Counter{}
	variants := []struct {
		name string
		opts core.CheckOptions
	}{
		{"legacy", core.CheckOptions{Exhaustive: true, Engine: core.EngineLegacy}},
		{"pruned", core.CheckOptions{Exhaustive: true, Engine: core.EnginePruned}},
		{"pruned-seq", core.CheckOptions{Exhaustive: true, Engine: core.EnginePruned, Parallelism: 1}},
		// Pinned to 4 workers so the scheduler cost is comparable across
		// hosts with different core counts.
		{"pruned-par4", core.CheckOptions{Exhaustive: true, Engine: core.EnginePruned, Parallelism: 4}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			checks, steals := 0, 0
			for i := 0; i < b.N; i++ {
				res := core.CheckRA(h, sp, v.opts)
				if res.OK || !res.Complete {
					b.Fatalf("history must be refuted completely: %+v", res)
				}
				if res.Nodes > 0 {
					checks = res.Nodes
				} else {
					checks = res.Tried
				}
				steals = res.Steals
			}
			b.ReportMetric(float64(checks), "checks/refute")
			if v.opts.Engine == core.EnginePruned {
				b.ReportMetric(float64(steals), "steals/refute")
			}
		})
	}
}

// BenchmarkDegradedRefutation measures the cost of the memory-budget
// degraded mode on the gated refutation workload: the same sequential pruned
// refutation with full memoization, with memoization disabled outright, and
// through a session whose budget trips on the first interned state (the
// graceful-degradation path the fail-safe machinery falls back to). The
// checks/refute metric makes the Nodes delta of memo-less search visible.
// Deliberately NOT part of BENCH_GATE_PATTERN: degraded mode trades speed for
// bounded memory by design.
func BenchmarkDegradedRefutation(b *testing.B) {
	h := nonLinearizableHistory(7)
	sp := spec.Counter{}
	base := core.CheckOptions{Exhaustive: true, Engine: core.EnginePruned, Parallelism: 1}
	variants := []struct {
		name string
		opts func() core.CheckOptions
	}{
		{"memo", func() core.CheckOptions { return base }},
		{"memo-less", func() core.CheckOptions {
			o := base
			o.DisableMemo = true
			return o
		}},
		{"budget-tripped", func() core.CheckOptions {
			o := base
			o.Session = search.NewSessionWithBudget(search.Budget{MaxInternedStates: 1})
			return o
		}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			opts := v.opts()
			nodes := 0
			for i := 0; i < b.N; i++ {
				res := core.CheckRA(h, sp, opts)
				if res.OK || !res.Complete {
					b.Fatalf("history must be refuted completely: %+v", res)
				}
				nodes = res.Nodes
			}
			b.ReportMetric(float64(nodes), "checks/refute")
		})
	}
}

// BenchmarkProofObligations measures the executable proof-obligation checking
// (the Boogie substitute of Section 6) for one operation-based and one
// state-based CRDT.
func BenchmarkProofObligations(b *testing.B) {
	opts := verify.Options{Seed: 1, Trials: 5, Ops: 8, Replicas: 3, Elems: []string{"a", "b"}, MaxStates: 25}
	opBased, _ := registry.Lookup("RGA")
	stateBased, _ := registry.Lookup("Multi-Value Reg.")
	b.Run("op-based/RGA", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if r := verify.CheckOpBased(opBased, opts); !r.OK() {
				b.Fatal("obligations failed")
			}
		}
	})
	b.Run("state-based/MV-Register", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if r := verify.CheckStateBased(stateBased, opts); !r.OK() {
				b.Fatal("obligations failed")
			}
		}
	})
}

// BenchmarkRuntimeThroughput measures the raw simulator throughput (operations
// plus full delivery) for a representative operation-based and state-based
// CRDT, independent of any checking.
func BenchmarkRuntimeThroughput(b *testing.B) {
	for _, name := range []string{"RGA", "OR-Set", "PN-Counter", "LWW-Element Set"} {
		d, err := registry.Lookup(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := harness.WorkloadConfig{Ops: 30, Replicas: 3, DeliveryProb: 30, FinalDelivery: true}
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				if _, err := harness.RunRandom(d, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScenarioCorpus replays the committed fault-schedule corpus
// (testdata/corpus/): every harvested history is checked against its recorded
// plan with the pruned engine on a single goroutine, so the number reported
// here is the steady-state cost of the regression corpus itself. The verdicts
// are asserted each iteration — a checker change that flips one fails the
// benchmark, not just the test suite.
func BenchmarkScenarioCorpus(b *testing.B) {
	entries, paths := loadCorpus(b)
	type job struct {
		path string
		h    *core.History
		plan scenario.CheckPlan
		opts core.CheckOptions
		want bool
	}
	jobs := make([]job, 0, len(entries))
	for i, e := range entries {
		h, err := e.History()
		if err != nil {
			b.Fatalf("%s: %v", paths[i], err)
		}
		plan, err := e.Plan()
		if err != nil {
			b.Fatalf("%s: %v", paths[i], err)
		}
		opts := plan.Options
		opts.Parallelism = 1
		opts.Engine = core.EnginePruned
		jobs = append(jobs, job{paths[i], h, plan, opts, e.RALinearizable})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, j := range jobs {
			res := core.CheckRA(j.h, j.plan.Spec, j.opts)
			if res.OK != j.want {
				b.Fatalf("%s: verdict %v, corpus recorded %v", j.path, res.OK, j.want)
			}
		}
	}
	b.ReportMetric(float64(len(jobs))*float64(b.N)/b.Elapsed().Seconds(), "histories/sec")
}

// incrementalStream builds the deterministic n-op monitor workload of
// BenchmarkIncrementalExtend: counter increments with a read every fourth
// operation that sees every update so far (edges attached as the read is
// appended, the way a live monitor observes them). Labels are shared across
// iterations; each iteration replays them into a fresh history.
func incrementalStream(n int) ([]*core.Label, [][]core.VisEdge) {
	labels := make([]*core.Label, 0, n)
	edges := make([][]core.VisEdge, n)
	incs := 0
	for k := 0; k < n; k++ {
		id := uint64(k + 1)
		if (k+1)%4 == 0 {
			l := &core.Label{ID: id, Method: "read", Ret: int64(incs), Kind: core.KindQuery, GenSeq: id}
			labels = append(labels, l)
			for _, u := range labels[:k] {
				if u.Kind == core.KindUpdate {
					edges[k] = append(edges[k], core.VisEdge{From: u.ID, To: id})
				}
			}
		} else {
			labels = append(labels, &core.Label{ID: id, Method: "inc", Kind: core.KindUpdate, GenSeq: id})
			incs++
		}
	}
	return labels, edges
}

// BenchmarkIncrementalExtend measures the point of the incremental checker:
// re-verifying a growing history at every operation. The extend variant
// replays the stream through core.CheckRAExtend over one warm session, so
// each prefix costs ~the marginal work of its new operation (a certificate
// replay in the steady state); the scratch variant is what a monitor without
// the incremental path must do — a full from-scratch check of every prefix.
// Both verify the identical n prefixes per iteration and report prefixes/sec;
// the committed baseline (BENCHMARKS.md) shows the extend curve staying ~flat
// in n where scratch grows ~quadratically. `make bench-gate` diffs the
// allocs/op of every sub-benchmark against the committed baseline.
func BenchmarkIncrementalExtend(b *testing.B) {
	sp := spec.Counter{}
	for _, n := range []int{8, 16, 32, 64} {
		labels, edges := incrementalStream(n)
		replay := func(b *testing.B, check func(g *core.History, k int) core.Result) {
			b.Helper()
			g := core.NewHistory()
			for k, l := range labels {
				g.MustAdd(l)
				for _, e := range edges[k] {
					g.MustAddVis(e.From, e.To)
				}
				if res := check(g, k); res.Verdict != core.VerdictValid {
					b.Fatalf("prefix %d/%d: %v (%+v)", k+1, n, res.Verdict, res.Incomplete)
				}
			}
		}
		b.Run(fmt.Sprintf("extend/n=%d", n), func(b *testing.B) {
			sess := search.NewSession()
			opts := core.CheckOptions{Exhaustive: true, Parallelism: 1, Session: sess}
			run := func(b *testing.B) {
				replay(b, func(g *core.History, k int) core.Result {
					return core.CheckRAExtend(g, sp, labels[k:k+1], opts)
				})
			}
			// Two warm-up replays fill the session caches (pools, interner,
			// transition cache); the timed loop measures the steady state.
			for w := 0; w < 2; w++ {
				run(b)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run(b)
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "prefixes/sec")
		})
		b.Run(fmt.Sprintf("scratch/n=%d", n), func(b *testing.B) {
			opts := core.CheckOptions{Exhaustive: true, Parallelism: 1}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				replay(b, func(g *core.History, k int) core.Result {
					return core.CheckRA(g, sp, opts)
				})
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "prefixes/sec")
		})
	}
}

// BenchmarkGuidedVsRankOrder is the differential benchmark gating guided
// branch ordering (ROADMAP direction 4): the committed corpus is checked
// sequentially with strategies disabled — so the engine searches every entry —
// once in rank order and once guided, under identical options. Verdicts are
// asserted identical every iteration; the per-polarity mean node counts are
// reported so the refutation win (query commit shrinks time-to-contradiction)
// and the witness-side effect are both visible in the committed baseline.
func BenchmarkGuidedVsRankOrder(b *testing.B) {
	entries, paths := loadCorpus(b)
	type job struct {
		path string
		h    *core.History
		plan scenario.CheckPlan
		opts core.CheckOptions
		want bool
	}
	jobs := make([]job, 0, len(entries))
	for i, e := range entries {
		h, err := e.History()
		if err != nil {
			b.Fatalf("%s: %v", paths[i], err)
		}
		plan, err := e.Plan()
		if err != nil {
			b.Fatalf("%s: %v", paths[i], err)
		}
		opts := plan.Options
		opts.Strategies = nil
		opts.Exhaustive = true
		opts.Parallelism = 1
		opts.Engine = core.EnginePruned
		jobs = append(jobs, job{paths[i], h, plan, opts, e.RALinearizable})
	}
	for _, mode := range []core.Guidance{core.GuidanceRankOrder, core.GuidanceGuided} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			var refNodes, refCount, witNodes, witCount int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				refNodes, refCount, witNodes, witCount = 0, 0, 0, 0
				for _, j := range jobs {
					opts := j.opts
					opts.Guidance = mode
					res := core.CheckRA(j.h, j.plan.Spec, opts)
					if res.OK != j.want || !res.Complete {
						b.Fatalf("%s (%s): verdict %v complete=%v, corpus recorded %v",
							j.path, mode, res.OK, res.Complete, j.want)
					}
					if res.OK {
						witNodes += int64(res.Nodes)
						witCount++
					} else {
						refNodes += int64(res.Nodes)
						refCount++
					}
				}
			}
			b.ReportMetric(float64(len(jobs))*float64(b.N)/b.Elapsed().Seconds(), "histories/sec")
			if refCount > 0 {
				b.ReportMetric(float64(refNodes)/float64(refCount), "refutation-nodes/check")
			}
			if witCount > 0 {
				b.ReportMetric(float64(witNodes)/float64(witCount), "witness-nodes/check")
			}
		})
	}
}
