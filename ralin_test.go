package ralin

import (
	"testing"

	"ralin/internal/runtime"
)

func TestFacadeLookupAndCheck(t *testing.T) {
	d, err := Lookup("Counter")
	if err != nil {
		t.Fatal(err)
	}
	sys := d.NewOpSystem(runtime.Config{Replicas: 2})
	sys.MustInvoke(0, "inc")
	sys.MustInvoke(1, "read")
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	res := Check(d, sys.History())
	if !res.OK {
		t.Fatalf("counter history must be RA-linearizable: %v", res.LastErr)
	}
	if _, err := Lookup("Skiplist"); err == nil {
		t.Fatal("unknown CRDT must fail")
	}
	if len(CRDTs()) != 10 {
		t.Fatalf("expected 10 registered CRDTs, got %d", len(CRDTs()))
	}
}

func TestFacadeVerify(t *testing.T) {
	for _, name := range []string{"Counter", "2P-Set"} {
		d, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if report := Verify(d); !report.OK() {
			t.Fatalf("%s verification failed:\n%s", name, report)
		}
	}
}

func TestFacadeExperimentsAndTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full table and figures take a few seconds")
	}
	for _, e := range Experiments() {
		if !e.OK {
			t.Errorf("experiment %s did not reproduce", e.ID)
		}
	}
	rows, err := Table()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("expected 9 Figure 12 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if !r.OK() {
			t.Errorf("Figure 12 row %s failed verification", r.Name)
		}
	}
}
