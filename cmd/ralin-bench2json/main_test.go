package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: ralin
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkEngineNonLinearizable/legacy         	      10	  35567659 ns/op	      5040 checks/refute	 9056230 B/op	  395416 allocs/op
BenchmarkEngineNonLinearizable/pruned         	      10	    153158 ns/op	       449.0 checks/refute	   47519 B/op	    1196 allocs/op
PASS
ok  	ralin	0.400s
`

func TestParseSample(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Context["goos"] != "linux" || doc.Context["goarch"] != "amd64" {
		t.Fatalf("context not captured: %v", doc.Context)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("expected 2 benchmarks, got %d", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[1]
	if b.Name != "BenchmarkEngineNonLinearizable/pruned" || b.Package != "ralin" {
		t.Fatalf("wrong name/package: %+v", b)
	}
	if b.Iterations != 10 {
		t.Fatalf("wrong iterations: %d", b.Iterations)
	}
	want := map[string]float64{"ns/op": 153158, "checks/refute": 449, "B/op": 47519, "allocs/op": 1196}
	for unit, v := range want {
		if b.Metrics[unit] != v {
			t.Fatalf("metric %s: got %v, want %v", unit, b.Metrics[unit], v)
		}
	}
}

func TestParseSkipsMalformed(t *testing.T) {
	in := "BenchmarkBroken notanumber\nBenchmarkOK-8 5 100 ns/op\n"
	doc, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 1 || doc.Benchmarks[0].Name != "BenchmarkOK-8" {
		t.Fatalf("malformed line not skipped: %+v", doc.Benchmarks)
	}
}
