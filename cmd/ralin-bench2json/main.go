// Command ralin-bench2json converts the text output of `go test -bench` on
// stdin into a stable JSON document on stdout, so benchmark runs can be
// committed or uploaded as machine-readable artifacts (`make bench-json`
// writes BENCH_results.json; CI uploads it on every run, giving the repo a
// benchmark trajectory over time).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | ralin-bench2json > BENCH_results.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line: the name (with the -N GOMAXPROCS
// suffix kept as printed), the iteration count, and every reported metric by
// unit (ns/op, B/op, allocs/op, plus any custom b.ReportMetric units such as
// checks/refute).
type Result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Document is the full converted run.
type Document struct {
	Context    map[string]string `json:"context"`
	Benchmarks []Result          `json:"benchmarks"`
}

func main() {
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ralin-bench2json:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "ralin-bench2json:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Document, error) {
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	doc := &Document{Context: map[string]string{}, Benchmarks: []Result{}}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			doc.Context[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "pkg:"):
			_, v, _ := strings.Cut(line, ":")
			pkg = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			res.Package = pkg
			doc.Benchmarks = append(doc.Benchmarks, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// parseBenchLine parses one `BenchmarkName-N  iters  v1 unit1  v2 unit2 ...`
// line. Lines that do not fit the shape (for example a benchmark's FAIL
// output) are skipped rather than fatal: the caller's exit code already
// reflects `go test` failures.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}
