// Command ralin-scenario drives the fault-schedule scenario library: it runs
// named scenarios (partitions and split brain, lossy and duplicating links,
// replica churn, hot-key skew, clock skew over hybrid logical clocks),
// RA-checks the induced histories under each scenario's mode, and — with
// -harvest — refreshes the committed regression corpus under testdata/corpus/
// with the most interesting histories found (refutations first, then the
// highest search-node counts).
//
// Usage:
//
//	ralin-scenario -all                       # run every scenario
//	ralin-scenario -scenario partition-heal -trials 50
//	ralin-scenario -all -harvest testdata/corpus -trials 40 -keep 2
//	ralin-scenario -list-scenarios
//
// The exit code distinguishes the worst verdict across the scenarios run —
// 0 all as expected, 1 unexpected refutation, 2 unknown verdicts,
// 3 operational error — see the -h output.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ralin/cmd/internal/cliflags"
	"ralin/internal/harness"
	"ralin/internal/scenario"
)

func main() {
	all := flag.Bool("all", false, "run every scenario in the library")
	trials := flag.Int("trials", 20, "histories generated per scenario")
	seed := cliflags.AddSeed(flag.CommandLine)
	keep := flag.Int("keep", 2, "corpus entries kept per scenario when harvesting")
	harvest := flag.String("harvest", "", "harvest the most interesting histories into this corpus directory instead of batch-checking")
	common := cliflags.AddCommon(flag.CommandLine)
	scen := cliflags.AddScenario(flag.CommandLine)
	cliflags.DocumentExitCodes(flag.CommandLine)
	flag.Parse()

	if scen.HandleList(os.Stdout) {
		return
	}

	o, err := common.Options()
	if err != nil {
		fatal(err)
	}

	var scenarios []scenario.Scenario
	switch {
	case *all:
		scenarios = scenario.All()
	case scen.Name() != "":
		sc, err := scenario.Lookup(scen.Name())
		if err != nil {
			fatal(err)
		}
		scenarios = []scenario.Scenario{sc}
	default:
		fmt.Fprintln(os.Stderr, "ralin-scenario: pick -scenario NAME or -all (see -list-scenarios)")
		os.Exit(3)
	}

	if *harvest != "" {
		if err := harvestCorpus(scenarios, *harvest, *seed, *trials, *keep); err != nil {
			fatal(err)
		}
		return
	}

	// The process exit code is the worst verdict across scenarios:
	// unexpected refutations (1) dominate unknowns (2) dominate clean runs.
	failed, unknown := 0, 0
	for _, sc := range scenarios {
		switch runScenario(sc, o, *seed, *trials, common.Incremental()) {
		case 1:
			failed++
		case 2:
			unknown++
		}
	}
	switch {
	case failed > 0:
		fmt.Fprintf(os.Stderr, "ralin-scenario: %d scenario(s) produced unexpected verdicts\n", failed)
		os.Exit(1)
	case unknown > 0:
		fmt.Fprintf(os.Stderr, "ralin-scenario: %d scenario(s) left unknown verdicts (deadline/budget/panic)\n", unknown)
		os.Exit(2)
	}
}

// fatal reports an operational error (exit 3 per the documented contract).
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ralin-scenario:", err)
	os.Exit(3)
}

// runScenario batch-checks trials histories of one scenario, prints a summary
// line, and returns the scenario's verdict exit code (0/1/2). Refutations are
// the expected outcome of naive-mode scenarios and unexpected anywhere else.
func runScenario(sc scenario.Scenario, o harness.Options, seed int64, trials int, incremental bool) int {
	plan, err := sc.Plan()
	if err != nil {
		fatal(err)
	}
	gen := scenario.Generator{Scenario: sc, Seed: seed}
	var res harness.HistoryCheck
	if incremental {
		res, err = harness.MonitorGenerated(sc.Name, plan.Spec, plan.Options, gen, trials, o)
	} else {
		res, err = harness.CheckGeneratedAgainst(sc.Name, plan.Spec, plan.Options, gen, trials, o)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-20s %s vs %s (%s mode): %d histories, %d ops, %d nodes",
		sc.Name, sc.CRDT, plan.SpecName, sc.Mode, res.Histories, res.Operations, res.Nodes)
	if res.Prefixes > 0 {
		fmt.Printf(", %d/%d prefixes replayed from certificate", res.Replayed, res.Prefixes)
	}
	switch {
	case res.Invalid > 0 && plan.ExpectRefutations:
		fmt.Printf(", %d refuted as intended (e.g. %s)", res.Invalid, res.FailureExample)
	case res.Invalid > 0:
		fmt.Printf(", %d UNEXPECTED refutations (e.g. %s)", res.Invalid, res.FailureExample)
	case res.Unknown == 0:
		fmt.Print(", all RA-linearizable")
	}
	if res.Unknown > 0 {
		fmt.Printf(", %d unknown", res.Unknown)
		for reason, n := range res.UnknownByReason {
			fmt.Printf(" [%s: %d]", reason, n)
		}
	}
	fmt.Println()
	return cliflags.VerdictExitCode(res, plan.ExpectRefutations)
}

// harvestCorpus refreshes dir with the keep most interesting entries per
// scenario, named <scenario>-<seed>.json.
func harvestCorpus(scenarios []scenario.Scenario, dir string, seed int64, trials, keep int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, sc := range scenarios {
		entries, summary, err := scenario.Harvest(sc, seed, trials, keep)
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %s\n", sc.Name, summary)
		for _, e := range entries {
			path := filepath.Join(dir, fmt.Sprintf("%s-%d.json", e.Scenario, e.Seed))
			if err := scenario.WriteEntry(path, e); err != nil {
				return err
			}
			verdict := "linearizable"
			if !e.RALinearizable {
				verdict = "refuted"
			}
			fmt.Printf("  wrote %s (%s, %d nodes)\n", path, verdict, e.Nodes)
		}
	}
	return nil
}
