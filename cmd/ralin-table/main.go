// Command ralin-table regenerates the Figure 12 table of the paper: every
// CRDT implemented in this repository is run through the proof obligations of
// the RA-linearizability methodology (Commutativity/Refinement for
// operation-based types, the Appendix D properties for state-based ones) and
// through a batch of random histories checked against its sequential
// specification.
//
// Usage:
//
//	ralin-table [-trials N] [-ops N] [-replicas N] [-histories N] [-seed N] [-details]
package main

import (
	"flag"
	"fmt"
	"os"

	"ralin/cmd/internal/cliflags"
	"ralin/internal/harness"
	"ralin/internal/verify"
)

func main() {
	trials := flag.Int("trials", 20, "random executions per CRDT for the proof obligations")
	ops := flag.Int("ops", 10, "operations per random execution")
	replicas := flag.Int("replicas", 3, "replicas per execution")
	histories := flag.Int("histories", 25, "random histories checked for RA-linearizability per CRDT")
	seed := cliflags.AddSeed(flag.CommandLine)
	details := flag.Bool("details", false, "print per-obligation details below the table")
	common := cliflags.AddCommon(flag.CommandLine)
	flag.Parse()

	o, err := common.Options()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ralin-table:", err)
		os.Exit(1)
	}

	opts := harness.Fig12Options{
		Options: o,
		Verify: verify.Options{
			Seed:      *seed,
			Trials:    *trials,
			Ops:       *ops,
			Replicas:  *replicas,
			Elems:     []string{"a", "b", "c"},
			MaxStates: 40,
		},
		HistoryTrials: *histories,
		Workload: harness.WorkloadConfig{
			Seed:         *seed,
			Ops:          *ops,
			Replicas:     *replicas,
			Elems:        []string{"a", "b", "c"},
			DeliveryProb: 40,
		},
	}
	rows, err := harness.Fig12Table(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ralin-table:", err)
		os.Exit(1)
	}
	fmt.Println("Figure 12 — CRDTs proved RA-linearizable and the class of linearizations used")
	fmt.Println()
	fmt.Print(harness.RenderFig12(rows))
	var planReuses, rewriteHits int
	for _, r := range rows {
		planReuses += r.Histories.PlanReuses
		rewriteHits += r.Histories.RewriteHits
	}
	fmt.Printf("\nplan cache across all rows: %d pooled plans reused, %d cached rewrites\n", planReuses, rewriteHits)
	if *details {
		fmt.Println()
		fmt.Print(harness.RenderFig12Details(rows))
	}
	for _, r := range rows {
		if !r.OK() {
			fmt.Fprintf(os.Stderr, "ralin-table: %s failed verification\n", r.Name)
			os.Exit(1)
		}
	}
}
