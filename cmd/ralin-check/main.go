// Command ralin-check generates random histories of a chosen CRDT and checks
// each for RA-linearizability with the type's designated linearization
// strategy (execution order or timestamp order) and a bounded exhaustive
// fallback. It is the workhorse behind the scaling experiments, and — via
// -cpuprofile/-memprofile — the standard way to capture pprof evidence for
// checker performance work.
//
// Usage:
//
//	ralin-check -crdt RGA -histories 50 -ops 10 -replicas 3
//	ralin-check -crdt OR-Set -cpuprofile cpu.out -memprofile mem.out
//	ralin-check -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"ralin/internal/core"
	"ralin/internal/crdt/registry"
	"ralin/internal/harness"
)

func main() {
	name := flag.String("crdt", "OR-Set", "CRDT to check (see -list)")
	histories := flag.Int("histories", 50, "number of random histories")
	ops := flag.Int("ops", 8, "operations per history")
	replicas := flag.Int("replicas", 3, "replicas per history")
	seed := flag.Int64("seed", 1, "workload seed")
	delivery := flag.Int("delivery", 40, "probability (percent) of a propagation step between operations")
	engine := flag.String("engine", "auto", "exhaustive-search engine: auto, pruned or legacy")
	parallel := flag.Int("parallel", 0, "pruned-engine worker goroutines sharing one memo table via work stealing (0 = GOMAXPROCS)")
	batchWorkers := flag.Int("batch-workers", 0, "goroutines checking histories of one batch concurrently over a shared engine session (0 = GOMAXPROCS, 1 = sequential)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file before exiting")
	list := flag.Bool("list", false, "list the registered CRDTs and exit")
	flag.Parse()

	if *list {
		for _, n := range registry.Names() {
			fmt.Println(n)
		}
		return
	}

	// The checking work runs inside run() so the profile writers below —
	// which must flush even when the check fails — see every exit path;
	// os.Exit skips defers, so main only calls it after run returns.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}
	code := run(*engine, *parallel, *batchWorkers, *name, *histories, *ops, *replicas, *seed, *delivery)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // settle the live heap before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
	os.Exit(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ralin-check:", err)
	os.Exit(1)
}

func run(engine string, parallel, batchWorkers int, name string, histories, ops, replicas int, seed int64, delivery int) int {
	eng, err := core.ParseEngine(engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ralin-check:", err)
		return 1
	}
	harness.SetCheckEngine(eng, parallel)
	harness.SetBatchWorkers(batchWorkers)

	d, err := registry.Lookup(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ralin-check:", err)
		return 1
	}
	cfg := harness.WorkloadConfig{
		Seed:         seed,
		Ops:          ops,
		Replicas:     replicas,
		Elems:        []string{"a", "b", "c"},
		DeliveryProb: delivery,
	}
	res, err := harness.CheckRandomHistories(d, histories, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ralin-check:", err)
		return 1
	}
	fmt.Printf("%s (%s, %s linearizations)\n", d.Name, d.Class, d.Lin)
	fmt.Printf("  histories checked:   %d (%d operations total)\n", res.Histories, res.Operations)
	fmt.Printf("  RA-linearizable:     %d\n", res.Linearizable)
	for strategy, n := range res.ByStrategy {
		fmt.Printf("    via %-18s %d\n", strategy+":", n)
	}
	fmt.Printf("  candidates tried:    %d (engine %s)\n", res.Tried, core.ResolveEngine(eng))
	if res.Nodes > 0 {
		fmt.Printf("  search nodes:        %d explored, %d pruned, %d memo hits\n", res.Nodes, res.Pruned, res.MemoHits)
		fmt.Printf("  scheduler:           %d stolen branches, memo striped over %d shards\n", res.Steals, res.Shards)
	}
	fmt.Printf("  batch:               %d workers, %d interned states shared across histories\n", res.BatchWorkers, res.InternedStates)
	fmt.Printf("  plan cache:          %d pooled plans reused, %d cached rewrites, inner parallelism <= %d\n",
		res.PlanReuses, res.RewriteHits, res.MaxInnerParallelism)
	if !res.OK() {
		fmt.Printf("  FIRST FAILURE: %s\n", res.FailureExample)
		return 1
	}
	return 0
}
