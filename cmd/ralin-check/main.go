// Command ralin-check generates random histories of a chosen CRDT and checks
// each for RA-linearizability with the type's designated linearization
// strategy (execution order or timestamp order) and a bounded exhaustive
// fallback. It is the workhorse behind the scaling experiments.
//
// Usage:
//
//	ralin-check -crdt RGA -histories 50 -ops 10 -replicas 3
//	ralin-check -list
package main

import (
	"flag"
	"fmt"
	"os"

	"ralin/internal/core"
	"ralin/internal/crdt/registry"
	"ralin/internal/harness"
)

func main() {
	name := flag.String("crdt", "OR-Set", "CRDT to check (see -list)")
	histories := flag.Int("histories", 50, "number of random histories")
	ops := flag.Int("ops", 8, "operations per history")
	replicas := flag.Int("replicas", 3, "replicas per history")
	seed := flag.Int64("seed", 1, "workload seed")
	delivery := flag.Int("delivery", 40, "probability (percent) of a propagation step between operations")
	engine := flag.String("engine", "auto", "exhaustive-search engine: auto, pruned or legacy")
	parallel := flag.Int("parallel", 0, "pruned-engine worker goroutines (0 = GOMAXPROCS)")
	list := flag.Bool("list", false, "list the registered CRDTs and exit")
	flag.Parse()

	if *list {
		for _, n := range registry.Names() {
			fmt.Println(n)
		}
		return
	}

	eng, err := core.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ralin-check:", err)
		os.Exit(1)
	}
	harness.SetCheckEngine(eng, *parallel)

	d, err := registry.Lookup(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ralin-check:", err)
		os.Exit(1)
	}
	cfg := harness.WorkloadConfig{
		Seed:         *seed,
		Ops:          *ops,
		Replicas:     *replicas,
		Elems:        []string{"a", "b", "c"},
		DeliveryProb: *delivery,
	}
	res, err := harness.CheckRandomHistories(d, *histories, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ralin-check:", err)
		os.Exit(1)
	}
	fmt.Printf("%s (%s, %s linearizations)\n", d.Name, d.Class, d.Lin)
	fmt.Printf("  histories checked:   %d (%d operations total)\n", res.Histories, res.Operations)
	fmt.Printf("  RA-linearizable:     %d\n", res.Linearizable)
	for strategy, n := range res.ByStrategy {
		fmt.Printf("    via %-18s %d\n", strategy+":", n)
	}
	fmt.Printf("  candidates tried:    %d (engine %s)\n", res.Tried, core.ResolveEngine(eng))
	if res.Nodes > 0 {
		fmt.Printf("  search nodes:        %d explored, %d pruned, %d memo hits\n", res.Nodes, res.Pruned, res.MemoHits)
	}
	if !res.OK() {
		fmt.Printf("  FIRST FAILURE: %s\n", res.FailureExample)
		os.Exit(1)
	}
}
