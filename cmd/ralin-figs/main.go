// Command ralin-figs regenerates the worked figures of the paper as
// machine-checked scenarios: Figure 2 (RGA conflict resolution), Figure 3
// (the corresponding history), Figures 5a/5b (OR-Set vs the naive Set
// specification and the query-update rewriting), the Section 3.3 client
// reasoning exercise, Figure 8 (execution-order vs timestamp-order
// linearizations), Figures 9 and 10 (compositionality), Figure 13 (the
// operational semantics step by step) and Figure 14 (the addAt specification
// separation).
//
// Usage:
//
//	ralin-figs            # run every experiment
//	ralin-figs -fig 5a    # run a single experiment (2, 3, 5a, 5b, sec3.3, 8, 9, 10, 13, 14)
//	ralin-figs -list      # list experiment identifiers
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ralin/cmd/internal/cliflags"
	"ralin/internal/harness"
)

func main() {
	fig := flag.String("fig", "", "single figure to reproduce (for example \"5a\" or \"fig-5a\")")
	list := flag.Bool("list", false, "list experiment identifiers and exit")
	common := cliflags.AddCommon(flag.CommandLine)
	flag.Parse()

	o, err := common.Options()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ralin-figs:", err)
		os.Exit(1)
	}

	if *list {
		for _, id := range harness.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	var experiments []harness.Experiment
	if *fig != "" {
		id := *fig
		if !strings.HasPrefix(id, "fig-") && !strings.HasPrefix(id, "sec-") {
			id = "fig-" + id
		}
		e, err := harness.ExperimentByID(id, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ralin-figs:", err)
			os.Exit(1)
		}
		experiments = []harness.Experiment{e}
	} else {
		experiments = harness.Experiments(o)
	}

	failed := 0
	for _, e := range experiments {
		fmt.Println(e)
		if !e.OK {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "ralin-figs: %d experiment(s) did not reproduce\n", failed)
		os.Exit(1)
	}
}
