// Command ralin-verify runs the proof obligations of the RA-linearizability
// methodology for a single CRDT and prints the per-obligation report: for
// operation-based types the Commutativity and Refinement (or Refinement_ts)
// conditions of Section 4, for state-based types the Prop1..Prop6 properties
// and refinement conditions of Appendix D. It is the per-type view of what
// cmd/ralin-table aggregates.
//
// Usage:
//
//	ralin-verify -crdt RGA [-trials N] [-ops N] [-replicas N] [-seed N]
//	ralin-verify -all
//	ralin-verify -list
//
// Alongside the deductive obligations, -histories N (default 10) RA-checks N
// random histories of each verified CRDT with the configured search engine
// (-engine, -parallel), tying the obligation run to the checker the rest of
// the toolchain uses.
package main

import (
	"flag"
	"fmt"
	"os"

	"ralin/internal/core"
	"ralin/internal/crdt"
	"ralin/internal/crdt/registry"
	"ralin/internal/harness"
	"ralin/internal/verify"
)

func main() {
	name := flag.String("crdt", "RGA", "CRDT to verify (see -list)")
	all := flag.Bool("all", false, "verify every registered CRDT")
	trials := flag.Int("trials", 20, "random executions explored")
	ops := flag.Int("ops", 10, "operations per execution")
	replicas := flag.Int("replicas", 3, "replicas per execution")
	seed := flag.Int64("seed", 1, "workload seed")
	histories := flag.Int("histories", 10, "random histories RA-checked per CRDT after the obligations (0 disables)")
	engine := flag.String("engine", "auto", "exhaustive-search engine: auto, pruned or legacy")
	parallel := flag.Int("parallel", 0, "pruned-engine worker goroutines sharing one memo table via work stealing (0 = GOMAXPROCS)")
	batchWorkers := flag.Int("batch-workers", 0, "goroutines checking histories of one batch concurrently over a shared engine session (0 = GOMAXPROCS, 1 = sequential)")
	list := flag.Bool("list", false, "list the registered CRDTs and exit")
	flag.Parse()

	if *list {
		for _, n := range registry.Names() {
			fmt.Println(n)
		}
		return
	}

	eng, err := core.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ralin-verify:", err)
		os.Exit(1)
	}
	harness.SetCheckEngine(eng, *parallel)
	harness.SetBatchWorkers(*batchWorkers)
	opts := verify.Options{
		Seed:      *seed,
		Trials:    *trials,
		Ops:       *ops,
		Replicas:  *replicas,
		Elems:     []string{"a", "b", "c"},
		MaxStates: 40,
	}

	var targets []crdt.Descriptor
	if *all {
		targets = registry.All()
	} else {
		d, err := registry.Lookup(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ralin-verify:", err)
			os.Exit(1)
		}
		targets = []crdt.Descriptor{d}
	}

	failed := 0
	for _, d := range targets {
		var report verify.Report
		if d.Class == crdt.StateBased {
			report = verify.CheckStateBased(d, opts)
		} else {
			report = verify.CheckOpBased(d, opts)
		}
		fmt.Print(report)
		if !report.OK() {
			failed++
		}
		if *histories > 0 {
			cfg := harness.WorkloadConfig{
				Seed: *seed, Ops: *ops, Replicas: *replicas,
				Elems: []string{"a", "b", "c"}, DeliveryProb: 40,
			}
			hc, err := harness.CheckRandomHistories(d, *histories, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ralin-verify:", err)
				os.Exit(1)
			}
			fmt.Printf("  %-28s %6d checked  ", "RA-Linearizable(random)", hc.Histories)
			if hc.OK() {
				if hc.Nodes > 0 {
					fmt.Printf("ok (%d candidates, %d nodes, %d steals, %d plan reuses, %d cached rewrites, engine %s)\n",
						hc.Tried, hc.Nodes, hc.Steals, hc.PlanReuses, hc.RewriteHits, core.ResolveEngine(eng))
				} else {
					fmt.Printf("ok (%d candidates, engine %s)\n", hc.Tried, core.ResolveEngine(eng))
				}
			} else {
				fmt.Printf("FAILED (%s)\n", hc.FailureExample)
				failed++
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "ralin-verify: %d CRDT(s) failed their proof obligations\n", failed)
		os.Exit(1)
	}
}
