// Command ralin-verify runs the proof obligations of the RA-linearizability
// methodology for a single CRDT and prints the per-obligation report: for
// operation-based types the Commutativity and Refinement (or Refinement_ts)
// conditions of Section 4, for state-based types the Prop1..Prop6 properties
// and refinement conditions of Appendix D. It is the per-type view of what
// cmd/ralin-table aggregates.
//
// Usage:
//
//	ralin-verify -crdt RGA [-trials N] [-ops N] [-replicas N] [-seed N]
//	ralin-verify -all
//	ralin-verify -list
//	ralin-verify -scenario hot-key
//
// Alongside the deductive obligations, -histories N (default 10) RA-checks N
// random histories of each verified CRDT with the configured search engine
// (-engine, -parallel), tying the obligation run to the checker the rest of
// the toolchain uses. With -scenario, the random histories are replaced by
// the named fault-schedule scenario's histories and the obligations run for
// that scenario's CRDT.
package main

import (
	"flag"
	"fmt"
	"os"

	"ralin/cmd/internal/cliflags"
	"ralin/internal/core"
	"ralin/internal/crdt"
	"ralin/internal/crdt/registry"
	"ralin/internal/harness"
	"ralin/internal/scenario"
	"ralin/internal/verify"
)

func main() {
	name := flag.String("crdt", "RGA", "CRDT to verify (see -list)")
	all := flag.Bool("all", false, "verify every registered CRDT")
	trials := flag.Int("trials", 20, "random executions explored")
	ops := flag.Int("ops", 10, "operations per execution")
	replicas := flag.Int("replicas", 3, "replicas per execution")
	seed := cliflags.AddSeed(flag.CommandLine)
	histories := flag.Int("histories", 10, "random histories RA-checked per CRDT after the obligations (0 disables)")
	common := cliflags.AddCommon(flag.CommandLine)
	scen := cliflags.AddScenario(flag.CommandLine)
	list := flag.Bool("list", false, "list the registered CRDTs and exit")
	flag.Parse()

	if *list {
		for _, n := range registry.Names() {
			fmt.Println(n)
		}
		return
	}
	if scen.HandleList(os.Stdout) {
		return
	}

	o, err := common.Options()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ralin-verify:", err)
		os.Exit(1)
	}
	opts := verify.Options{
		Seed:      *seed,
		Trials:    *trials,
		Ops:       *ops,
		Replicas:  *replicas,
		Elems:     []string{"a", "b", "c"},
		MaxStates: 40,
	}

	var sc scenario.Scenario
	var plan scenario.CheckPlan
	useScenario := scen.Name() != ""
	if useScenario {
		sc, err = scenario.Lookup(scen.Name())
		if err != nil {
			fmt.Fprintln(os.Stderr, "ralin-verify:", err)
			os.Exit(1)
		}
		plan, err = sc.Plan()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ralin-verify:", err)
			os.Exit(1)
		}
		*name = sc.CRDT
	}

	var targets []crdt.Descriptor
	if *all && !useScenario {
		targets = registry.All()
	} else {
		d, err := registry.Lookup(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ralin-verify:", err)
			os.Exit(1)
		}
		targets = []crdt.Descriptor{d}
	}

	failed := 0
	for _, d := range targets {
		var report verify.Report
		if d.Class == crdt.StateBased {
			report = verify.CheckStateBased(d, opts)
		} else {
			report = verify.CheckOpBased(d, opts)
		}
		fmt.Print(report)
		if !report.OK() {
			failed++
		}
		if *histories > 0 {
			var hc harness.HistoryCheck
			var label string
			if useScenario {
				label = fmt.Sprintf("RA-Linearizable(%s)", sc.Name)
				gen := scenario.Generator{Scenario: sc, Seed: *seed}
				hc, err = harness.CheckGeneratedAgainst(sc.Name, plan.Spec, plan.Options, gen, *histories, o)
			} else {
				label = "RA-Linearizable(random)"
				cfg := harness.WorkloadConfig{
					Seed: *seed, Ops: *ops, Replicas: *replicas,
					Elems: []string{"a", "b", "c"}, DeliveryProb: 40,
				}
				hc, err = harness.CheckRandomHistoriesWith(d, *histories, cfg, o)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "ralin-verify:", err)
				os.Exit(1)
			}
			eng := core.ResolveEngine(o.Engine)
			fmt.Printf("  %-28s %6d checked  ", label, hc.Histories)
			switch {
			case hc.OK():
				if hc.Nodes > 0 {
					fmt.Printf("ok (%d candidates, %d nodes, %d steals, %d plan reuses, %d cached rewrites, engine %s)\n",
						hc.Tried, hc.Nodes, hc.Steals, hc.PlanReuses, hc.RewriteHits, eng)
				} else {
					fmt.Printf("ok (%d candidates, engine %s)\n", hc.Tried, eng)
				}
			case useScenario && plan.ExpectRefutations && hc.Invalid > 0 && hc.Unknown == 0:
				// Naive-mode scenarios exist to provoke refutations; report
				// them as findings rather than failing the obligation run.
				fmt.Printf("refuted %d/%d vs naive %s spec, as intended (e.g. %s)\n",
					hc.Invalid, hc.Histories, plan.SpecName, hc.FailureExample)
			case hc.Invalid == 0:
				// No definitive refutation, but some trials were truncated by
				// a deadline, budget or panic: the check is inconclusive.
				fmt.Printf("UNKNOWN for %d/%d (%s)\n", hc.Unknown, hc.Histories, hc.UnknownExample)
				failed++
			default:
				fmt.Printf("FAILED (%s)\n", hc.FailureExample)
				failed++
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "ralin-verify: %d CRDT(s) failed their proof obligations\n", failed)
		os.Exit(1)
	}
}
