// Command ralin-verify runs the proof obligations of the RA-linearizability
// methodology for a single CRDT and prints the per-obligation report: for
// operation-based types the Commutativity and Refinement (or Refinement_ts)
// conditions of Section 4, for state-based types the Prop1..Prop6 properties
// and refinement conditions of Appendix D. It is the per-type view of what
// cmd/ralin-table aggregates.
//
// Usage:
//
//	ralin-verify -crdt RGA [-trials N] [-ops N] [-replicas N] [-seed N]
//	ralin-verify -all
//	ralin-verify -list
package main

import (
	"flag"
	"fmt"
	"os"

	"ralin/internal/crdt"
	"ralin/internal/crdt/registry"
	"ralin/internal/verify"
)

func main() {
	name := flag.String("crdt", "RGA", "CRDT to verify (see -list)")
	all := flag.Bool("all", false, "verify every registered CRDT")
	trials := flag.Int("trials", 20, "random executions explored")
	ops := flag.Int("ops", 10, "operations per execution")
	replicas := flag.Int("replicas", 3, "replicas per execution")
	seed := flag.Int64("seed", 1, "workload seed")
	list := flag.Bool("list", false, "list the registered CRDTs and exit")
	flag.Parse()

	if *list {
		for _, n := range registry.Names() {
			fmt.Println(n)
		}
		return
	}
	opts := verify.Options{
		Seed:      *seed,
		Trials:    *trials,
		Ops:       *ops,
		Replicas:  *replicas,
		Elems:     []string{"a", "b", "c"},
		MaxStates: 40,
	}

	var targets []crdt.Descriptor
	if *all {
		targets = registry.All()
	} else {
		d, err := registry.Lookup(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ralin-verify:", err)
			os.Exit(1)
		}
		targets = []crdt.Descriptor{d}
	}

	failed := 0
	for _, d := range targets {
		var report verify.Report
		if d.Class == crdt.StateBased {
			report = verify.CheckStateBased(d, opts)
		} else {
			report = verify.CheckOpBased(d, opts)
		}
		fmt.Print(report)
		if !report.OK() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "ralin-verify: %d CRDT(s) failed their proof obligations\n", failed)
		os.Exit(1)
	}
}
