// Package cliflags factors the flag wiring shared by the cmd/ralin-* tools:
// the checker/batch flags (-engine, -parallel, -batch-workers) and resource
// limits (-timeout, -max-interned, -max-memo-mb) that resolve to a
// harness.Options value, the -seed flag, and the scenario selection flags
// (-scenario, -list-scenarios) backed by the internal/scenario library.
package cliflags

import (
	"flag"
	"fmt"
	"io"
	"time"

	"ralin/internal/core"
	"ralin/internal/harness"
	"ralin/internal/scenario"
	"ralin/internal/search"
)

// Common holds the checker/batch flags shared by every tool.
type Common struct {
	engine       *string
	guidance     *string
	parallel     *int
	batchWorkers *int
	timeout      *time.Duration
	maxInterned  *int
	maxMemoMB    *int
	incremental  *bool
}

// AddCommon registers -engine, -guidance, -parallel, -batch-workers,
// -incremental and the resource limit flags (-timeout, -max-interned,
// -max-memo-mb) on the flag set.
func AddCommon(fs *flag.FlagSet) *Common {
	return &Common{
		engine:       fs.String("engine", "auto", "exhaustive-search engine: auto, pruned or legacy"),
		guidance:     fs.String("guidance", "auto", "pruned-engine branch ordering: auto, rank-order or guided (heuristic; same verdicts, fewer nodes on refutations)"),
		parallel:     fs.Int("parallel", 0, "pruned-engine worker goroutines sharing one memo table via work stealing (0 = GOMAXPROCS)"),
		batchWorkers: fs.Int("batch-workers", 0, "goroutines checking histories of one batch concurrently over a shared engine session (0 = GOMAXPROCS, 1 = sequential)"),
		timeout:      fs.Duration("timeout", 0, "wall-clock budget for the whole run; trials past the deadline report verdict unknown instead of hanging (0 = none)"),
		maxInterned:  fs.Int("max-interned", 0, "memory budget: max distinct interned abstract states per session before searches degrade to memo-less mode (0 = unlimited)"),
		maxMemoMB:    fs.Int("max-memo-mb", 0, "memory budget: approximate MiB of live memoization entries per session before searches degrade to memo-less mode (0 = unlimited)"),
		incremental:  fs.Bool("incremental", false, "replay each history op-by-op through the incremental checker (Session.Extend): every prefix is re-verified in ~marginal time, same final verdicts as the batch check"),
	}
}

// Incremental reports whether -incremental was given: histories should be
// replayed op-by-op through harness.MonitorGenerated instead of batch-checked
// whole.
func (c *Common) Incremental() bool { return *c.incremental }

// Options resolves the parsed flags into a harness.Options value.
func (c *Common) Options() (harness.Options, error) {
	eng, err := core.ParseEngine(*c.engine)
	if err != nil {
		return harness.Options{}, err
	}
	guide, err := core.ParseGuidance(*c.guidance)
	if err != nil {
		return harness.Options{}, err
	}
	return harness.Options{
		Engine:       eng,
		Guidance:     guide,
		Parallelism:  *c.parallel,
		BatchWorkers: *c.batchWorkers,
		Timeout:      *c.timeout,
		Budget: search.Budget{
			MaxInternedStates: *c.maxInterned,
			MaxMemoBytes:      int64(*c.maxMemoMB) << 20,
		},
	}, nil
}

// ExitCodesDoc is the exit-code contract of the verdict-aware checking tools
// (ralin-check, ralin-scenario), appended to their -h output so CI scripts
// can gate on verdicts.
const ExitCodesDoc = `
exit codes:
  0  every history valid (or, under -scenario, refutations were expected)
  1  at least one definitively invalid history (unexpected refutation)
  2  at least one unknown verdict (deadline, memory/node budget, cancellation
     or recovered panic truncated the check; also used by flag-usage errors)
  3  operational error (bad arguments, generator failure, I/O)

The three-valued verdict contract behind these codes (Valid/Invalid/Unknown
and every Incomplete reason) is documented in docs/VERDICTS.md.
`

// DocumentExitCodes appends ExitCodesDoc to the flag set's usage output.
func DocumentExitCodes(fs *flag.FlagSet) {
	prev := fs.Usage
	fs.Usage = func() {
		if prev != nil {
			prev()
		} else {
			fmt.Fprintf(fs.Output(), "Usage of %s:\n", fs.Name())
			fs.PrintDefaults()
		}
		fmt.Fprint(fs.Output(), ExitCodesDoc)
	}
}

// VerdictExitCode maps a batch result to the documented exit code:
// Invalid (1) dominates Unknown (2) dominates Valid (0); expectRefutations
// (the naive-specification scenario modes) makes Invalid the expected finding
// rather than a failure. Operational errors (exit 3) are the caller's to
// report — they never reach a HistoryCheck.
func VerdictExitCode(res harness.HistoryCheck, expectRefutations bool) int {
	if res.Invalid > 0 && !expectRefutations {
		return 1
	}
	if res.Unknown > 0 {
		return 2
	}
	return 0
}

// Engine returns the resolved engine (for reporting).
func (c *Common) Engine() (core.Engine, error) { return core.ParseEngine(*c.engine) }

// AddSeed registers the -seed flag.
func AddSeed(fs *flag.FlagSet) *int64 {
	return fs.Int64("seed", 1, "workload seed")
}

// Scenario holds the scenario-selection flags.
type Scenario struct {
	name *string
	list *bool
}

// AddScenario registers -scenario and -list-scenarios on the flag set.
func AddScenario(fs *flag.FlagSet) *Scenario {
	return &Scenario{
		name: fs.String("scenario", "", "fault-schedule scenario to generate histories from (see -list-scenarios)"),
		list: fs.Bool("list-scenarios", false, "list the named fault-schedule scenarios and exit"),
	}
}

// Name returns the selected scenario name ("" for none).
func (s *Scenario) Name() string { return *s.name }

// HandleList prints the scenario library when -list-scenarios was given and
// reports whether it did (the caller should then exit).
func (s *Scenario) HandleList(w io.Writer) bool {
	if !*s.list {
		return false
	}
	ListScenarios(w)
	return true
}

// ListScenarios prints the scenario library, one line per scenario.
func ListScenarios(w io.Writer) {
	for _, sc := range scenario.All() {
		fmt.Fprintf(w, "%-20s %s (%s, %s mode)\n", sc.Name, sc.Description, sc.CRDT, sc.Mode)
	}
}
