// Package cliflags factors the flag wiring shared by the cmd/ralin-* tools:
// the checker/batch flags (-engine, -parallel, -batch-workers) that resolve
// to a harness.Options value, the -seed flag, and the scenario selection
// flags (-scenario, -list-scenarios) backed by the internal/scenario library.
package cliflags

import (
	"flag"
	"fmt"
	"io"

	"ralin/internal/core"
	"ralin/internal/harness"
	"ralin/internal/scenario"
)

// Common holds the checker/batch flags shared by every tool.
type Common struct {
	engine       *string
	parallel     *int
	batchWorkers *int
}

// AddCommon registers -engine, -parallel and -batch-workers on the flag set.
func AddCommon(fs *flag.FlagSet) *Common {
	return &Common{
		engine:       fs.String("engine", "auto", "exhaustive-search engine: auto, pruned or legacy"),
		parallel:     fs.Int("parallel", 0, "pruned-engine worker goroutines sharing one memo table via work stealing (0 = GOMAXPROCS)"),
		batchWorkers: fs.Int("batch-workers", 0, "goroutines checking histories of one batch concurrently over a shared engine session (0 = GOMAXPROCS, 1 = sequential)"),
	}
}

// Options resolves the parsed flags into a harness.Options value.
func (c *Common) Options() (harness.Options, error) {
	eng, err := core.ParseEngine(*c.engine)
	if err != nil {
		return harness.Options{}, err
	}
	return harness.Options{
		Engine:       eng,
		Parallelism:  *c.parallel,
		BatchWorkers: *c.batchWorkers,
	}, nil
}

// Engine returns the resolved engine (for reporting).
func (c *Common) Engine() (core.Engine, error) { return core.ParseEngine(*c.engine) }

// AddSeed registers the -seed flag.
func AddSeed(fs *flag.FlagSet) *int64 {
	return fs.Int64("seed", 1, "workload seed")
}

// Scenario holds the scenario-selection flags.
type Scenario struct {
	name *string
	list *bool
}

// AddScenario registers -scenario and -list-scenarios on the flag set.
func AddScenario(fs *flag.FlagSet) *Scenario {
	return &Scenario{
		name: fs.String("scenario", "", "fault-schedule scenario to generate histories from (see -list-scenarios)"),
		list: fs.Bool("list-scenarios", false, "list the named fault-schedule scenarios and exit"),
	}
}

// Name returns the selected scenario name ("" for none).
func (s *Scenario) Name() string { return *s.name }

// HandleList prints the scenario library when -list-scenarios was given and
// reports whether it did (the caller should then exit).
func (s *Scenario) HandleList(w io.Writer) bool {
	if !*s.list {
		return false
	}
	ListScenarios(w)
	return true
}

// ListScenarios prints the scenario library, one line per scenario.
func ListScenarios(w io.Writer) {
	for _, sc := range scenario.All() {
		fmt.Fprintf(w, "%-20s %s (%s, %s mode)\n", sc.Name, sc.Description, sc.CRDT, sc.Mode)
	}
}
