// Command ralin-benchdiff is the benchmark regression gate: it compares a
// candidate benchmark run (ralin-bench2json output) against a committed
// baseline and fails when a gated benchmark regressed.
//
// Two metrics are gated, with different strictness:
//
//   - allocs/op is machine-independent, so any increase over the baseline
//     beyond -max-allocs-regression percent fails the gate. The default is 0
//     (strictly no regression); the Makefile's bench-gate target passes 1,
//     because the concurrent batch benchmarks have ~0.1% run-to-run
//     allocation jitter from goroutine scheduling while real regressions
//     show up at several percent;
//   - ns/op is compared only when both documents were measured on the same
//     CPU model (the context emitted by `go test -bench`): a regression
//     beyond -max-ns-regression percent fails. Across different CPUs the
//     ns/op delta is reported as advisory only, unless -force-ns insists —
//     wall-clock comparisons between machines would gate on hardware, not
//     code. A -max-ns-regression of 0 (or less) makes ns/op advisory
//     everywhere; CI uses that, because hosted runners report generic CPU
//     strings that match across genuinely different shared-VM hardware.
//
// A third, absolute gate is optional: -assert-zero-allocs names candidate
// benchmarks (by regexp) that must report exactly 0 allocs/op, baseline
// regardless — the warm-session re-check steady state is pinned this way, so
// a single reintroduced per-check allocation fails the gate even if the
// committed baseline also carried it.
//
// Only benchmarks whose name matches -match are gated — by default the
// scheduling-independent variants of the refutation and batch-checking
// benchmarks (sequential searches, single-worker batches), because variants
// whose effective concurrency floats with the host's core count allocate
// differently per machine. A gated benchmark present in the baseline but
// missing from the candidate also fails, so the gate cannot be silenced by
// deleting a benchmark.
//
// Usage:
//
//	ralin-benchdiff -baseline BENCH_results.json -candidate fresh.json
//	ralin-benchdiff -baseline BENCH_results.json -candidate fresh.json -match 'EngineNonLinearizable' -max-ns-regression 10
//
// `make bench-gate` runs the gated benchmarks and pipes them through this
// command; CI runs that target on every build.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"
)

// Result and Document mirror cmd/ralin-bench2json's output schema.
type Result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Document is one parsed benchmark run.
type Document struct {
	Context    map[string]string `json:"context"`
	Benchmarks []Result          `json:"benchmarks"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_results.json", "committed baseline JSON")
	candidatePath := flag.String("candidate", "", "fresh run JSON to gate (required)")
	// The default gate covers only the scheduling-independent variants:
	// fixed sequential searches and single-worker batches. Variants whose
	// worker count floats with GOMAXPROCS (plain "pruned") or whose pool
	// concurrency actually materializes only on multi-core hosts (w4
	// batches, pruned-par4) allocate differently per machine, so gating
	// them against a baseline recorded elsewhere would fail on hardware,
	// not code. IncrementalExtend gates its extend variants only — the
	// scratch side is the contrast workload, and its small sizes finish too
	// fast for 50 iterations to yield a stable ns/op reading.
	match := flag.String("match",
		"^Benchmark(EngineNonLinearizable/(legacy|pruned-seq)|BatchRefutations/(fresh|shared)/w1|BatchCheckRandomHistories/(fresh|shared)/w1|SessionRecheck/(fresh|session)|ScenarioCorpus|IncrementalExtend/extend/n=\\d+)\\b",
		"regexp selecting the gated benchmarks")
	maxNS := flag.Float64("max-ns-regression", 25, "maximum tolerated ns/op regression in percent (same-CPU runs); <= 0 makes ns/op advisory")
	maxAllocs := flag.Float64("max-allocs-regression", 0, "maximum tolerated allocs/op regression in percent; < 0 makes allocs/op advisory (for ns-only gates against a runner-cached baseline)")
	forceNS := flag.Bool("force-ns", false, "gate ns/op even when baseline and candidate ran on different CPUs")
	assertZero := flag.String("assert-zero-allocs", "", "regexp selecting candidate benchmarks whose allocs/op must be exactly 0 — an absolute gate, independent of the baseline; empty disables it")
	flag.Parse()

	if *candidatePath == "" {
		fmt.Fprintln(os.Stderr, "ralin-benchdiff: -candidate is required")
		os.Exit(2)
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ralin-benchdiff: bad -match:", err)
		os.Exit(2)
	}
	var zeroRe *regexp.Regexp
	if *assertZero != "" {
		zeroRe, err = regexp.Compile(*assertZero)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ralin-benchdiff: bad -assert-zero-allocs:", err)
			os.Exit(2)
		}
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ralin-benchdiff:", err)
		os.Exit(2)
	}
	candidate, err := load(*candidatePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ralin-benchdiff:", err)
		os.Exit(2)
	}
	failures := diff(os.Stdout, baseline, candidate, re, *maxNS, *maxAllocs, *forceNS)
	failures += assertZeroAllocs(os.Stdout, candidate, zeroRe)
	if failures > 0 {
		os.Exit(1)
	}
}

// assertZeroAllocs enforces the absolute allocation gate: every candidate
// benchmark matching re must report exactly 0 allocs/op. A missing metric
// fails (the run must use -benchmem), and so does a pattern matching nothing
// — the assertion cannot be silenced by renaming the benchmark. Returns the
// number of failures; re nil disables the gate.
func assertZeroAllocs(w io.Writer, candidate *Document, re *regexp.Regexp) int {
	if re == nil {
		return 0
	}
	failures, matched := 0, 0
	for _, c := range candidate.Benchmarks {
		if !re.MatchString(c.Name) {
			continue
		}
		matched++
		k := key(c.Name)
		a, ok := c.Metrics["allocs/op"]
		switch {
		case !ok:
			failures++
			fmt.Fprintf(w, "FAIL  %-55s allocs/op missing from candidate (run with -benchmem)\n", k)
		case a != 0:
			failures++
			fmt.Fprintf(w, "FAIL  %-55s allocs/op = %.0f, must be exactly 0\n", k, a)
		default:
			fmt.Fprintf(w, "ok    %-55s allocs/op = 0 (asserted)\n", k)
		}
	}
	if matched == 0 {
		failures++
		fmt.Fprintf(w, "FAIL  no candidate benchmark matched -assert-zero-allocs %q\n", re)
	}
	return failures
}

func load(path string) (*Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// stripCPUSuffix removes the -N GOMAXPROCS suffix `go test -bench` appends,
// so runs from hosts with different core counts still pair up.
var stripCPUSuffix = regexp.MustCompile(`-\d+$`)

func key(name string) string { return stripCPUSuffix.ReplaceAllString(name, "") }

// diff prints the comparison table and returns the number of gate failures.
func diff(w io.Writer, baseline, candidate *Document, re *regexp.Regexp, maxNS, maxAllocs float64, forceNS bool) int {
	sameCPU := baseline.Context["cpu"] != "" && baseline.Context["cpu"] == candidate.Context["cpu"]
	gateNS := (sameCPU || forceNS) && maxNS > 0
	gateAllocs := maxAllocs >= 0
	switch {
	case maxNS <= 0:
		fmt.Fprintln(w, "note: ns/op gating disabled (-max-ns-regression <= 0) — allocs/op gates")
	case !gateNS:
		fmt.Fprintf(w, "note: baseline CPU %q != candidate CPU %q — ns/op is advisory, allocs/op gates\n",
			baseline.Context["cpu"], candidate.Context["cpu"])
	}
	if !gateAllocs {
		fmt.Fprintln(w, "note: allocs/op gating disabled (-max-allocs-regression < 0) — ns/op gates")
	}

	base := map[string]Result{}
	for _, b := range baseline.Benchmarks {
		if re.MatchString(b.Name) {
			base[key(b.Name)] = b
		}
	}
	failures := 0
	seen := map[string]bool{}
	for _, c := range candidate.Benchmarks {
		if !re.MatchString(c.Name) {
			continue
		}
		k := key(c.Name)
		seen[k] = true
		b, ok := base[k]
		if !ok {
			fmt.Fprintf(w, "NEW   %-55s (not in baseline; not gated)\n", k)
			continue
		}
		verdict := "ok   "
		var notes []string
		ba, baOK := b.Metrics["allocs/op"]
		ca, caOK := c.Metrics["allocs/op"]
		switch {
		case !gateAllocs:
			if baOK && caOK {
				notes = append(notes, fmt.Sprintf("allocs/op %.0f -> %.0f (advisory)", ba, ca))
			}
		case baOK && !caOK:
			// A candidate without the metric the baseline gates on (e.g.
			// -benchmem dropped from the bench invocation) must not slip
			// through as "0 allocations".
			verdict = "FAIL "
			failures++
			notes = append(notes, "allocs/op missing from candidate (run with -benchmem)")
		case baOK && ca > ba*(1+maxAllocs/100):
			verdict = "FAIL "
			failures++
			notes = append(notes, fmt.Sprintf("allocs/op regressed %.0f -> %.0f (limit +%.1f%%)", ba, ca, maxAllocs))
		case baOK:
			notes = append(notes, fmt.Sprintf("allocs/op %.0f -> %.0f", ba, ca))
		}
		if bn, cn := b.Metrics["ns/op"], c.Metrics["ns/op"]; bn > 0 && cn > 0 {
			deltaPct := (cn/bn - 1) * 100
			switch {
			case gateNS && deltaPct > maxNS:
				verdict = "FAIL "
				failures++
				notes = append(notes, fmt.Sprintf("ns/op regressed %+.1f%% (limit %+.1f%%)", deltaPct, maxNS))
			case gateNS:
				notes = append(notes, fmt.Sprintf("ns/op %+.1f%%", deltaPct))
			default:
				notes = append(notes, fmt.Sprintf("ns/op %+.1f%% (advisory)", deltaPct))
			}
		}
		fmt.Fprintf(w, "%s %-55s %s\n", verdict, k, strings.Join(notes, ", "))
	}
	for k := range base {
		if !seen[k] {
			fmt.Fprintf(w, "FAIL  %-55s gated benchmark missing from candidate run\n", k)
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(w, "ralin-benchdiff: %d regression(s) against the baseline\n", failures)
	} else {
		fmt.Fprintln(w, "ralin-benchdiff: no regressions against the baseline")
	}
	return failures
}
