package main

import (
	"regexp"
	"strings"
	"testing"
)

func doc(cpu string, benches ...Result) *Document {
	return &Document{Context: map[string]string{"cpu": cpu}, Benchmarks: benches}
}

func bench(name string, ns, allocs float64) Result {
	return Result{Name: name, Iterations: 1, Metrics: map[string]float64{"ns/op": ns, "allocs/op": allocs}}
}

var gate = regexp.MustCompile(`^Benchmark(EngineNonLinearizable|BatchRefutations)\b`)

func runDiff(t *testing.T, baseline, candidate *Document, forceNS bool) (int, string) {
	t.Helper()
	var out strings.Builder
	n := diffTo(&out, baseline, candidate, gate, 25, forceNS)
	return n, out.String()
}

// diffTo adapts diff's io.Writer parameter for tests (strict allocs gate).
func diffTo(w *strings.Builder, baseline, candidate *Document, re *regexp.Regexp, maxNS float64, forceNS bool) int {
	return diff(w, baseline, candidate, re, maxNS, 0, forceNS)
}

func TestDiffAllocTolerance(t *testing.T) {
	b := doc("cpuA", bench("BenchmarkBatchRefutations/shared/w4-4", 1000, 1000))
	within := doc("cpuA", bench("BenchmarkBatchRefutations/shared/w4-4", 1000, 1009))
	beyond := doc("cpuA", bench("BenchmarkBatchRefutations/shared/w4-4", 1000, 1011))
	var out strings.Builder
	if n := diff(&out, b, within, gate, 25, 1, false); n != 0 {
		t.Fatalf("0.9%% alloc jitter must pass a 1%% tolerance:\n%s", out.String())
	}
	if n := diff(&out, b, beyond, gate, 25, 1, false); n != 1 {
		t.Fatalf("1.1%% alloc growth must fail a 1%% tolerance:\n%s", out.String())
	}
}

func TestDiffPassesWhenUnchanged(t *testing.T) {
	b := doc("cpuA", bench("BenchmarkEngineNonLinearizable/pruned-4", 1000, 300))
	c := doc("cpuA", bench("BenchmarkEngineNonLinearizable/pruned-8", 1100, 300))
	if n, out := runDiff(t, b, c, false); n != 0 {
		t.Fatalf("10%% ns drift and equal allocs must pass (got %d):\n%s", n, out)
	}
}

func TestDiffFailsOnAllocRegression(t *testing.T) {
	b := doc("cpuA", bench("BenchmarkBatchRefutations/shared/w4-4", 1000, 700))
	c := doc("cpuA", bench("BenchmarkBatchRefutations/shared/w4-4", 1000, 701))
	n, out := runDiff(t, b, c, false)
	if n != 1 || !strings.Contains(out, "allocs/op regressed") {
		t.Fatalf("any allocs/op increase must fail (got %d):\n%s", n, out)
	}
}

func TestDiffFailsOnNSRegressionSameCPU(t *testing.T) {
	b := doc("cpuA", bench("BenchmarkEngineNonLinearizable/pruned-4", 1000, 300))
	c := doc("cpuA", bench("BenchmarkEngineNonLinearizable/pruned-4", 1300, 300))
	n, out := runDiff(t, b, c, false)
	if n != 1 || !strings.Contains(out, "ns/op regressed") {
		t.Fatalf(">25%% ns/op on the same CPU must fail (got %d):\n%s", n, out)
	}
}

func TestDiffNSAdvisoryAcrossCPUs(t *testing.T) {
	b := doc("cpuA", bench("BenchmarkEngineNonLinearizable/pruned-4", 1000, 300))
	c := doc("cpuB", bench("BenchmarkEngineNonLinearizable/pruned-4", 5000, 300))
	if n, out := runDiff(t, b, c, false); n != 0 || !strings.Contains(out, "advisory") {
		t.Fatalf("cross-CPU ns/op must be advisory (got %d):\n%s", n, out)
	}
	if n, _ := runDiff(t, b, c, true); n != 1 {
		t.Fatal("-force-ns must gate ns/op across CPUs")
	}
}

func TestDiffFailsOnMissingGatedBenchmark(t *testing.T) {
	b := doc("cpuA",
		bench("BenchmarkEngineNonLinearizable/pruned-4", 1000, 300),
		bench("BenchmarkBatchRefutations/shared/w4-4", 1000, 700))
	c := doc("cpuA", bench("BenchmarkEngineNonLinearizable/pruned-4", 1000, 300))
	n, out := runDiff(t, b, c, false)
	if n != 1 || !strings.Contains(out, "missing from candidate") {
		t.Fatalf("deleting a gated benchmark must fail the gate (got %d):\n%s", n, out)
	}
}

func TestDiffIgnoresUnmatchedAndNew(t *testing.T) {
	b := doc("cpuA", bench("BenchmarkFig12Table-4", 100, 10))
	c := doc("cpuA",
		bench("BenchmarkFig12Table-4", 900, 90), // not gated: no failure
		bench("BenchmarkBatchRefutations/fresh/w1-4", 1, 1))
	n, out := runDiff(t, b, c, false)
	if n != 0 || !strings.Contains(out, "NEW") {
		t.Fatalf("ungated regressions must pass and new benchmarks be noted (got %d):\n%s", n, out)
	}
}

func TestDiffNSDisabled(t *testing.T) {
	b := doc("cpuA", bench("BenchmarkEngineNonLinearizable/pruned-4", 1000, 300))
	c := doc("cpuA", bench("BenchmarkEngineNonLinearizable/pruned-4", 9000, 300))
	var out strings.Builder
	if n := diff(&out, b, c, gate, 0, 0, false); n != 0 || !strings.Contains(out.String(), "gating disabled") {
		t.Fatalf("-max-ns-regression 0 must disable ns gating even on the same CPU (got %d):\n%s", n, out.String())
	}
}

func TestDiffFailsOnMissingAllocsMetric(t *testing.T) {
	b := doc("cpuA", bench("BenchmarkBatchRefutations/shared/w4-4", 1000, 700))
	noAllocs := doc("cpuA", Result{
		Name:       "BenchmarkBatchRefutations/shared/w4-4",
		Iterations: 1,
		Metrics:    map[string]float64{"ns/op": 1000},
	})
	n, out := runDiff(t, b, noAllocs, false)
	if n != 1 || !strings.Contains(out, "allocs/op missing") {
		t.Fatalf("a candidate without allocs/op must fail the gate (got %d):\n%s", n, out)
	}
}

func TestDiffAllocsAdvisory(t *testing.T) {
	// The ns-only gate against a runner-cached baseline: allocs drift must
	// not fail, ns/op still gates on the same CPU string.
	b := doc("cpuA", bench("BenchmarkEngineNonLinearizable/pruned-4", 1000, 300))
	allocDrift := doc("cpuA", bench("BenchmarkEngineNonLinearizable/pruned-4", 1000, 900))
	var out strings.Builder
	if n := diff(&out, b, allocDrift, gate, 25, -1, false); n != 0 || !strings.Contains(out.String(), "allocs/op gating disabled") {
		t.Fatalf("-max-allocs-regression -1 must make allocs advisory (got %d):\n%s", n, out.String())
	}
	nsRegressed := doc("cpuA", bench("BenchmarkEngineNonLinearizable/pruned-4", 2000, 300))
	out.Reset()
	if n := diff(&out, b, nsRegressed, gate, 25, -1, false); n != 1 || !strings.Contains(out.String(), "ns/op regressed") {
		t.Fatalf("ns/op must still gate when allocs are advisory (got %d):\n%s", n, out.String())
	}
}

func TestKeyStripsGOMAXPROCSSuffix(t *testing.T) {
	if key("BenchmarkX/sub-8") != "BenchmarkX/sub" || key("BenchmarkX") != "BenchmarkX" {
		t.Fatal("suffix stripping wrong")
	}
}

func TestAssertZeroAllocs(t *testing.T) {
	re := regexp.MustCompile(`^BenchmarkSessionRecheck/session\b`)
	var out strings.Builder
	clean := doc("cpuA", bench("BenchmarkSessionRecheck/session-4", 1000, 0))
	if n := assertZeroAllocs(&out, clean, re); n != 0 || !strings.Contains(out.String(), "asserted") {
		t.Fatalf("0 allocs/op must pass the absolute gate (got %d):\n%s", n, out.String())
	}
	out.Reset()
	dirty := doc("cpuA", bench("BenchmarkSessionRecheck/session-4", 1000, 1))
	if n := assertZeroAllocs(&out, dirty, re); n != 1 || !strings.Contains(out.String(), "must be exactly 0") {
		t.Fatalf("1 alloc/op must fail the absolute gate (got %d):\n%s", n, out.String())
	}
	out.Reset()
	// A missing metric (run without -benchmem) and a pattern matching nothing
	// both fail: neither degradation may silence the assertion.
	bare := doc("cpuA", Result{Name: "BenchmarkSessionRecheck/session-4", Iterations: 1,
		Metrics: map[string]float64{"ns/op": 1000}})
	if n := assertZeroAllocs(&out, bare, re); n != 1 || !strings.Contains(out.String(), "missing") {
		t.Fatalf("missing allocs/op must fail the absolute gate (got %d):\n%s", n, out.String())
	}
	out.Reset()
	other := doc("cpuA", bench("BenchmarkSomethingElse-4", 1000, 0))
	if n := assertZeroAllocs(&out, other, re); n != 1 || !strings.Contains(out.String(), "matched") {
		t.Fatalf("an unmatched pattern must fail the absolute gate (got %d):\n%s", n, out.String())
	}
	if n := assertZeroAllocs(&out, dirty, nil); n != 0 {
		t.Fatal("a nil pattern must disable the absolute gate")
	}
}
