// Command mdlinks fails on broken intra-repository markdown links: it walks
// every .md file under the given root (default "."), extracts inline
// [text](target) links, and checks that each relative target — with any
// #fragment stripped — resolves to an existing file or directory. External
// links (with a URL scheme), pure fragments, and targets that escape the root
// (GitHub-page-relative paths like a workflow badge) are skipped; checking
// the web is a job for a crawler, keeping the repo's own cross-references
// intact is a job for CI. Wired into the docs job of
// .github/workflows/ci.yml and `make lint`.
//
// Usage: go run ./scripts/mdlinks [root]
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links, non-greedily so adjacent links on one
// line split correctly. Image links ![alt](target) match too via the optional
// leading bang — their targets must resolve just the same.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	broken := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		broken += checkFile(root, path)
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdlinks: %v\n", err)
		os.Exit(3)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "mdlinks: %d broken intra-repo link(s)\n", broken)
		os.Exit(1)
	}
}

func checkFile(root, path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdlinks: %s: %v\n", path, err)
		os.Exit(3)
	}
	broken := 0
	for lineNo, line := range strings.Split(string(data), "\n") {
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if rel, err := filepath.Rel(root, resolved); err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
				continue // escapes the repo: page-relative GitHub URL, not a file reference
			}
			if _, err := os.Stat(resolved); err != nil {
				fmt.Printf("%s:%d: broken link %q (resolved %s)\n", path, lineNo+1, m[1], resolved)
				broken++
			}
		}
	}
	return broken
}
