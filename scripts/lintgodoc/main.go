// Command lintgodoc enforces the documentation contract on the exported
// surface of the packages named on the command line: every exported function,
// method (on an exported receiver), type, constant, variable and struct field
// must carry a doc comment. The repository documents concurrency and
// lifecycle contracts in those comments (see docs/ARCHITECTURE.md); this
// check cannot read prose, but it guarantees no exported symbol ships without
// one. It is the dependency-free stand-in for revive's exported rule, wired
// into `make lint` and CI.
//
// Usage: go run ./scripts/lintgodoc ./internal/search ./internal/core ...
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: lintgodoc <package-dir> ...")
		os.Exit(3)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		bad += lintDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "lintgodoc: %d exported symbol(s) without doc comments\n", bad)
		os.Exit(1)
	}
}

func lintDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lintgodoc: %s: %v\n", dir, err)
		os.Exit(3)
	}
	bad := 0
	report := func(pos token.Pos, what string) {
		fmt.Printf("%s: %s is exported but has no doc comment\n", fset.Position(pos), what)
		bad++
	}
	for _, pkg := range pkgs {
		// Exported type names, so methods on unexported receivers (not part of
		// the exported API) are skipped.
		exportedTypes := map[string]bool{}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.TYPE {
					for _, spec := range gd.Specs {
						if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.IsExported() {
							exportedTypes[ts.Name.Name] = true
						}
					}
				}
			}
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					if recv := receiverType(d); recv == "" || exportedTypes[recv] {
						report(d.Pos(), "func "+d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if !s.Name.IsExported() {
								continue
							}
							if d.Doc == nil && s.Doc == nil {
								report(s.Pos(), "type "+s.Name.Name)
							}
							if st, ok := s.Type.(*ast.StructType); ok {
								for _, f := range st.Fields.List {
									for _, n := range f.Names {
										if n.IsExported() && f.Doc == nil && f.Comment == nil {
											report(n.Pos(), "field "+s.Name.Name+"."+n.Name)
										}
									}
								}
							}
						case *ast.ValueSpec:
							for _, n := range s.Names {
								if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
									report(n.Pos(), kindWord(d.Tok)+" "+n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return bad
}

// receiverType returns the bare type name of a method receiver ("" for plain
// functions), stripping any pointer and type parameters.
func receiverType(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// kindWord renders the declaration keyword for a value spec report.
func kindWord(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
